package analysis

import (
	"go/ast"
	"go/types"
)

// NoAllocAnalyzer turns the bench-only zero-allocation gates into a
// compile-time check: a function marked //envlint:noalloc (the hot-path
// kernels of internal/envelope, internal/linalg, internal/scratch and
// internal/laplacian) must not contain the structural allocation sites
// the AllocsPerRun guards exist to catch — make, new, append growth,
// map writes, slice/map composite literals, address-taken composite
// literals, closures, goroutine launches, non-constant string
// concatenation or string<->[]byte conversions.
//
// The check is intraprocedural by design: calls into other functions are
// not followed (annotate the callees too), and allocations on panic
// paths via fmt are tolerated because the runtime is already unwinding.
// The benchmark gates remain the ground truth for escape-analysis
// subtleties; the marker catches the structural regressions a reviewer
// would otherwise have to spot by eye.
var NoAllocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc: "flags allocation sites (make/new/append/map writes/closures/composite literals/" +
		"string building) inside functions marked //envlint:noalloc",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for fd := range markedFuncs(pass.Files, "noalloc") {
		if fd.Body == nil {
			continue
		}
		checkNoAllocBody(pass, fd.Body)
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func checkNoAllocBody(pass *Pass, body ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n, "make"):
				pass.Reportf(n.Pos(), "make in a //envlint:noalloc function allocates; take the buffer from the workspace")
			case isBuiltin(info, n, "new"):
				pass.Reportf(n.Pos(), "new in a //envlint:noalloc function allocates")
			case isBuiltin(info, n, "append"):
				pass.Reportf(n.Pos(), "append in a //envlint:noalloc function may grow its backing array; size the buffer up front")
			}
			// String conversions: string(bytes) / []byte(s) copy.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				to, from := tv.Type.Underlying(), info.TypeOf(n.Args[0])
				if from != nil && isStringByteConv(to, from.Underlying()) {
					pass.Reportf(n.Pos(), "string/[]byte conversion in a //envlint:noalloc function copies")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in a //envlint:noalloc function allocates")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in a //envlint:noalloc function allocates")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-taken composite literal in a //envlint:noalloc function escapes to the heap")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(lhs.Pos(), "map write in a //envlint:noalloc function may allocate on growth; use the workspace stamp map")
						}
					}
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in a //envlint:noalloc function may allocate its captures")
			return false // the body is the closure's problem, reported once
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in a //envlint:noalloc function allocates a stack")
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation in a //envlint:noalloc function allocates")
					}
				}
			}
		}
		return true
	})
}

// isStringByteConv reports whether a conversion between to and from is a
// copying string<->[]byte (or []rune) conversion.
func isStringByteConv(to, from types.Type) bool {
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
