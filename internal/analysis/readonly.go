package analysis

import (
	"go/ast"
	"go/types"
)

// ReadOnlyAnalyzer enforces the read-only slice contracts that the
// Artifacts cache and the linalg kernels document in prose: a function
// marked //envlint:readonly <param>... promises not to write through the
// named slice parameters (no arguments means every slice parameter).
// Memoized Fiedler vectors, cached spectral orderings and Lanczos basis
// columns are handed to many consumers as the same backing array — one
// write corrupts every later reader. Flagged writes: element assignment,
// element ++/--, copy with the parameter as destination, append to the
// parameter (which writes the shared backing array when capacity
// allows), and taking the address of an element.
var ReadOnlyAnalyzer = &Analyzer{
	Name: "readonly",
	Doc: "flags writes through slice parameters declared read-only with " +
		"//envlint:readonly (element stores, copy/append into them, element address-of)",
	Run: runReadOnly,
}

func runReadOnly(pass *Pass) error {
	info := pass.TypesInfo
	for fd, dir := range markedFuncs(pass.Files, "readonly") {
		if fd.Body == nil {
			continue
		}
		marked := readonlyParams(pass, info, fd, dir)
		if len(marked) == 0 {
			continue
		}
		checkReadOnlyBody(pass, fd.Body, marked)
	}
	return nil
}

// readonlyParams resolves the marker's arguments to parameter objects.
// With no arguments every slice parameter is read-only. A name that does
// not match any parameter is itself reported — a stale marker silently
// protecting nothing is worse than no marker.
func readonlyParams(pass *Pass, info *types.Info, fd *ast.FuncDecl, dir Directive) map[types.Object]bool {
	byName := map[string]types.Object{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				byName[name.Name] = obj
			}
		}
	}
	marked := map[types.Object]bool{}
	if len(dir.Args) == 0 {
		for _, obj := range byName {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				marked[obj] = true
			}
		}
		if len(marked) == 0 {
			pass.Reportf(dir.Pos, "//envlint:readonly on %s matches no slice parameters", fd.Name.Name)
		}
		return marked
	}
	for _, arg := range dir.Args {
		obj, ok := byName[arg]
		if !ok {
			pass.Reportf(dir.Pos, "//envlint:readonly names %s, which is not a parameter of %s", arg, fd.Name.Name)
			continue
		}
		marked[obj] = true
	}
	return marked
}

// markedBase resolves the root identifier of an index expression chain
// (p[i], p[i:j][k]) and reports whether it is a marked parameter.
func markedBase(info *types.Info, marked map[types.Object]bool, e ast.Expr) (string, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && marked[obj] {
				return x.Name, true
			}
			return "", false
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

func checkReadOnlyBody(pass *Pass, body ast.Node, marked map[types.Object]bool) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if name, ok := markedBase(info, marked, ix.X); ok {
						pass.Reportf(lhs.Pos(), "write through read-only parameter %s", name)
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if name, ok := markedBase(info, marked, ix.X); ok {
					pass.Reportf(n.Pos(), "write through read-only parameter %s", name)
				}
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "copy") && len(n.Args) == 2 {
				if name, ok := markedBase(info, marked, n.Args[0]); ok {
					pass.Reportf(n.Args[0].Pos(), "copy into read-only parameter %s", name)
				}
			}
			if isBuiltin(info, n, "append") && len(n.Args) > 0 {
				if name, ok := markedBase(info, marked, n.Args[0]); ok {
					pass.Reportf(n.Args[0].Pos(), "append to read-only parameter %s writes its shared backing array", name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
					if name, ok := markedBase(info, marked, ix.X); ok {
						pass.Reportf(n.Pos(), "address of element of read-only parameter %s escapes the contract", name)
					}
				}
			}
		}
		return true
	})
}
