package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WSRetainAnalyzer enforces the workspace lifetime contract from the
// scratch package and the Orderer docs: a *scratch.Workspace (and any
// buffer checked out of one) is only valid until the matching Release or
// Put, must never outlive the call it was handed to, and must never be
// shared across goroutines. Mechanically it flags workspace-derived
// values that are (a) stored into package-level variables, (b) stored
// into struct fields or composite literals other than the sanctioned
// OrderRequest carrier, (c) captured by a goroutine closure or passed as
// a `go` call argument, or (d) returned as a raw checked-out buffer.
var WSRetainAnalyzer = &Analyzer{
	Name: "wsretain",
	Doc: "flags *scratch.Workspace values (and buffers checked out of them) retained in " +
		"globals, struct fields, escaping goroutines or returns, violating the workspace " +
		"lifetime contract",
	Run: runWSRetain,
}

// isScratchWorkspace reports whether t is scratch.Workspace (the package
// is matched by its path base so the analyzer works identically against
// repro/internal/scratch and the test fixtures' stub scratch package).
func isScratchWorkspace(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Workspace" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "scratch" || strings.HasSuffix(path, "/scratch")
}

// isWorkspacePtr reports whether t is *scratch.Workspace.
func isWorkspacePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isScratchWorkspace(p.Elem())
}

// wsDerived classifies an expression as workspace-derived: the workspace
// pointer itself, or the direct result of a buffer checkout
// (ws.Int32s(n), ws.Bools(n), ws.Float64s(n) — any method call on a
// workspace receiver returning a slice). Buffers laundered through
// intermediate variables are beyond a single-pass syntactic check; the
// AllocsPerRun and race suites remain the backstop there.
func wsDerived(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && isWorkspacePtr(tv.Type) {
		return "workspace", true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if recv, ok := info.Types[sel.X]; ok && isWorkspacePtr(recv.Type) {
		if tv, ok := info.Types[e]; ok {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				return "workspace buffer", true
			}
		}
	}
	return "", false
}

// orderRequestField reports whether the written field belongs to an
// OrderRequest — the one sanctioned struct carrier of a workspace (the
// engine threads the calling worker's scratch through it for the
// duration of a single Order call).
// The root package re-exports the type as an alias, and Go 1.23+
// materializes aliases in go/types, so the check must unalias at every
// step.
func orderRequestField(t types.Type) bool {
	for {
		t = types.Unalias(t)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "OrderRequest"
}

func runWSRetain(pass *Pass) error {
	info := pass.TypesInfo
	// Composite literals assigned to a local variable stay inside the
	// call (the RQI solver packs checked-out buffers into a MINRESWork on
	// the stack); only literals that escape the statement — call
	// arguments, returns, package-level values — are checked. ast.Inspect
	// is pre-order, so assignments mark their literals before the
	// literals themselves are visited.
	localLit := map[*ast.CompositeLit]bool{}
	markLocal := func(rhs ast.Expr) {
		if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
			localLit[lit] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil && obj.Parent() != pass.Pkg.Scope() {
							markLocal(rhs)
						}
					}
					kind, ok := wsDerived(info, rhs)
					if !ok {
						continue
					}
					checkWSSink(pass, n.Lhs[i], kind)
				}
			case *ast.ValueSpec:
				// Package-level `var retained = ws` style declarations.
				for i, v := range n.Values {
					kind, ok := wsDerived(info, v)
					if !ok || i >= len(n.Names) {
						continue
					}
					if obj := info.Defs[n.Names[i]]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(n.Names[i].Pos(), "%s stored in package-level variable %s; workspaces must not outlive the call", kind, n.Names[i].Name)
					} else if obj != nil {
						markLocal(v)
					}
				}
			case *ast.CompositeLit:
				if !localLit[n] {
					checkWSComposite(pass, n)
				}
			case *ast.GoStmt:
				checkWSGo(pass, n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
						if kind, ok := wsDerived(info, call); ok && kind == "workspace buffer" {
							pass.Reportf(r.Pos(), "checked-out workspace buffer returned to the caller; copy it out instead")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkWSSink flags workspace-derived values assigned to globals or
// struct fields.
func checkWSSink(pass *Pass, lhs ast.Expr, kind string) {
	info := pass.TypesInfo
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Uses[lhs]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(), "%s stored in package-level variable %s; workspaces must not outlive the call", kind, lhs.Name)
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[lhs]
		if !ok || sel.Kind() != types.FieldVal {
			// Qualified package identifier (pkg.Global = ws).
			if obj := info.Uses[lhs.Sel]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				pass.Reportf(lhs.Pos(), "%s stored in package-level variable %s; workspaces must not outlive the call", kind, lhs.Sel.Name)
			}
			return
		}
		if recvType, ok := info.Types[lhs.X]; ok && orderRequestField(recvType.Type) {
			return
		}
		pass.Reportf(lhs.Pos(), "%s retained in struct field %s; workspaces are only valid until Release/Put", kind, lhs.Sel.Name)
	}
}

// checkWSComposite flags workspace-derived values packed into composite
// literals (struct fields, slices, maps) other than an OrderRequest.
func checkWSComposite(pass *Pass, lit *ast.CompositeLit) {
	info := pass.TypesInfo
	tv, ok := info.Types[lit]
	if ok && orderRequestField(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if kind, ok := wsDerived(info, val); ok {
			pass.Reportf(val.Pos(), "%s retained in composite literal; workspaces are only valid until Release/Put", kind)
		}
	}
}

// checkWSGo flags workspaces crossing a goroutine boundary: passed as a
// `go` call argument, or captured by the goroutine's closure from the
// enclosing scope.
func checkWSGo(pass *Pass, g *ast.GoStmt) {
	info := pass.TypesInfo
	for _, arg := range g.Call.Args {
		if kind, ok := wsDerived(info, arg); ok {
			pass.Reportf(arg.Pos(), "%s passed to a goroutine; workspaces are not safe for concurrent use", kind)
		}
	}
	fn, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !isWorkspacePtr(obj.Type()) {
			return true
		}
		if obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
			pass.Reportf(id.Pos(), "workspace %s captured by goroutine closure; give each goroutine its own (scratch.Get/Put)", id.Name)
		}
		return true
	})
}
