// Package analysis is the engine's static-analysis toolkit: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, diagnostics, an analysistest-style fixture
// runner) plus the five project-specific analyzers that turn this repo's
// prose contracts — workspace lifetime, context threading, sentinel-error
// matching, zero-allocation kernels, read-only slice arguments — into
// mechanical checks. cmd/envlint is the multichecker binary over all of
// them; CI runs it on every build variant.
//
// The framework is stdlib-only on purpose: the module carries zero
// external dependencies and the analyzers need nothing beyond go/ast,
// go/types and `go list` for package metadata. The API deliberately
// mirrors x/tools so the analyzers could be ported to a vet-tool shim
// with mechanical edits if the dependency policy ever changes.
//
// # Directives
//
// Analyzers are driven by three comment directives:
//
//	//envlint:noalloc
//	//envlint:readonly <param> [<param>...]
//	//envlint:ignore <analyzer> <reason>
//
// The first two are markers on a function's doc comment establishing a
// contract the corresponding analyzer enforces inside that function. The
// third suppresses one analyzer's diagnostics on the line it annotates
// (or, when it stands alone on a line, on the line below); the reason is
// mandatory so every suppression documents itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name diagnostics are attributed
// (and suppressions matched) by, one paragraph of contract documentation,
// and the per-package run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //envlint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract description printed by
	// `envlint -list`.
	Doc string
	// Run analyzes one package, reporting findings through pass.Report.
	// A non-nil error aborts the whole envlint run (it signals a broken
	// analyzer or load, not a finding).
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer.Run: the syntax trees,
// type information and a diagnostic sink. Unlike x/tools there are no
// Facts or required sub-analyzers — every analyzer here is self-contained.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report is the diagnostic sink installed by the driver.
	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf formats and emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: position translated through the file
// set and attributed to the analyzer that produced it.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position: //envlint:ignore suppressions have already
// been applied. The error reports analyzer failures, not findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := ignoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// All returns the full analyzer suite in stable order — what cmd/envlint
// runs by default.
func All() []*Analyzer {
	return []*Analyzer{
		WSRetainAnalyzer,
		CtxFlowAnalyzer,
		ErrSentinelAnalyzer,
		NoAllocAnalyzer,
		ReadOnlyAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
