package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every envlint comment directive.
const directivePrefix = "//envlint:"

// Directive is one parsed //envlint: comment: the verb (noalloc,
// readonly, ignore), its whitespace-separated arguments, and where it
// appeared.
type Directive struct {
	Verb string
	Args []string
	Pos  token.Pos
}

// parseDirective decodes one comment, returning ok=false for ordinary
// comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Verb: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

// funcDirectives collects the directives attached to each function
// declaration's doc comment across the package.
func funcDirectives(files []*ast.File) map[*ast.FuncDecl][]Directive {
	out := map[*ast.FuncDecl][]Directive{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if d, ok := parseDirective(c); ok {
						out[fd] = append(out[fd], d)
					}
				}
			}
		}
	}
	return out
}

// markedFuncs returns the functions carrying a given marker verb, with
// the marker's arguments.
func markedFuncs(files []*ast.File, verb string) map[*ast.FuncDecl]Directive {
	out := map[*ast.FuncDecl]Directive{}
	for fd, dirs := range funcDirectives(files) {
		for _, d := range dirs {
			if d.Verb == verb {
				out[fd] = d
			}
		}
	}
	return out
}

// ignores maps file name → line → analyzer names suppressed on that line.
type ignores map[string]map[int][]string

// ignoreIndex scans a package for //envlint:ignore directives. A
// directive suppresses the named analyzer on its own line and on the
// line immediately below, which covers both placements — trailing a
// statement and standing alone above one. The directive requires both an
// analyzer name and a reason; malformed ones are simply inert, and an
// inert ignore makes the underlying finding reappear, which is the loud
// failure mode.
func ignoreIndex(pkg *Package) ignores {
	idx := ignores{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.Verb != "ignore" || len(d.Args) < 2 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d.Args[0])
				byLine[pos.Line+1] = append(byLine[pos.Line+1], d.Args[0])
			}
		}
	}
	return idx
}

// suppressed reports whether analyzer name is ignored at pos.
func (ig ignores) suppressed(name string, pos token.Position) bool {
	byLine, ok := ig[pos.Filename]
	if !ok {
		return false
	}
	for _, n := range byLine[pos.Line] {
		if n == name {
			return true
		}
	}
	return false
}
