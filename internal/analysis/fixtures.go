package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the fixture half of the analysistest-style harness: small
// self-contained packages under internal/analysis/testdata/src/<name>
// exercise each analyzer against both flagged and clean code. Fixture
// imports resolve first against sibling fixture directories (so wsretain
// fixtures can import a stub "scratch" package shaped like the real one)
// and then against the standard library, which is type-checked from
// source once per process and cached.

// stdFixtureCache shares the standard-library type-check across fixture
// loads; std packages are export-only (NoBodies), so the cost is paid
// once per distinct import.
var stdFixtureCache = struct {
	sync.Mutex
	closure map[string]*types.Package
	fset    *token.FileSet
}{closure: map[string]*types.Package{}, fset: token.NewFileSet()}

// LoadFixtures loads the named fixture packages from root (conventionally
// testdata/src), type-checking them with full bodies and info, ready to
// hand to Run.
func LoadFixtures(root string, pkgs ...string) ([]*Package, error) {
	std := &stdFixtureCache
	std.Lock()
	defer std.Unlock()
	fset := std.fset

	type fixture struct {
		path    string
		files   []*ast.File
		imports []string
	}
	parsed := map[string]*fixture{}
	var parse func(path string) error
	parse = func(path string) error {
		if _, done := parsed[path]; done {
			return nil
		}
		dir := filepath.Join(root, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("analysis: fixture %s: %w", path, err)
		}
		fx := &fixture{path: path}
		parsed[path] = fx
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("analysis: parsing fixture %s: %w", path, err)
			}
			fx.files = append(fx.files, f)
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				fx.imports = append(fx.imports, p)
			}
		}
		for _, imp := range fx.imports {
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(imp))); err == nil {
				if err := parse(imp); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, p := range pkgs {
		if err := parse(p); err != nil {
			return nil, err
		}
	}

	// Collect the non-fixture (standard library) imports and ensure their
	// closure is in the cache.
	var stdNeeded []string
	for _, fx := range parsed {
		for _, imp := range fx.imports {
			if _, isFixture := parsed[imp]; !isFixture {
				if _, have := std.closure[imp]; !have {
					stdNeeded = append(stdNeeded, imp)
				}
			}
		}
	}
	if len(stdNeeded) > 0 {
		sort.Strings(stdNeeded)
		res, err := Load(LoadConfig{
			Patterns:  stdNeeded,
			NoBodies:  true,
			Fset:      fset,
			Preloaded: std.closure,
		})
		if err != nil {
			return nil, err
		}
		for path, tp := range res.Closure {
			std.closure[path] = tp
		}
	}

	// Type-check fixtures in dependency order.
	checked := map[string]*Package{}
	closure := map[string]*types.Package{}
	for path, tp := range std.closure {
		closure[path] = tp
	}
	var check func(path string) error
	check = func(path string) error {
		if _, done := checked[path]; done {
			return nil
		}
		fx := parsed[path]
		for _, imp := range fx.imports {
			if _, isFixture := parsed[imp]; isFixture {
				if err := check(imp); err != nil {
					return err
				}
			}
		}
		info := newTypesInfo()
		tpkg, err := typeCheck(fset, path, fx.files, mapImporter(closure), false, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking fixture %s: %w", path, err)
		}
		closure[path] = tpkg
		checked[path] = &Package{
			PkgPath:   path,
			Name:      tpkg.Name(),
			Dir:       filepath.Join(root, filepath.FromSlash(path)),
			Fset:      fset,
			Syntax:    fx.files,
			Types:     tpkg,
			TypesInfo: info,
		}
		return nil
	}
	out := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		if err := check(p); err != nil {
			return nil, err
		}
		out = append(out, checked[p])
	}
	return out, nil
}
