package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// ErrSentinelAnalyzer enforces the error-matching contract of the store,
// retry and client layers: sentinel values (ErrNotFound, ErrCorrupt,
// ErrTransient, ErrCancelled, ...) travel through fmt.Errorf("...: %w")
// wrapping and resilience decorators, so identity must be tested with
// errors.Is, never ==/!=. It flags (a) ==/!= comparisons where one side
// is an error and the other a sentinel-named value, (b) switch
// statements dispatching on an error value with sentinel cases, and (c)
// fmt.Errorf calls that pass an error argument without a %w verb —
// wrapping that silently strips the chain errors.Is depends on.
var ErrSentinelAnalyzer = &Analyzer{
	Name: "errsentinel",
	Doc: "flags ==/!= comparisons and switch dispatch against Err* sentinels (use errors.Is) " +
		"and fmt.Errorf wrapping of error values without %w",
	Run: runErrSentinel,
}

// errType is the universal error interface.
var errType = types.Universe.Lookup("error").Type()

// isErrorExpr reports whether e has static type error (or a type that
// implements it as a non-nil concrete error value would not — sentinel
// comparisons are interface-vs-interface, so the static interface type
// is the signal).
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && types.AssignableTo(tv.Type, errType)
}

// sentinelName reports whether e is a value named like an error
// sentinel: Err followed by an upper-case letter (ErrNotFound,
// store.ErrCorrupt). nil and ordinary identifiers pass.
func sentinelName(e ast.Expr) (string, bool) {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return "", false
	}
	if len(name) > 3 && strings.HasPrefix(name, "Err") && unicode.IsUpper(rune(name[3])) {
		return name, true
	}
	return "", false
}

func runErrSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				checkSentinelCompare(pass, n)
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSentinelCompare flags `err == ErrX` / `err != ErrX`.
func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	info := pass.TypesInfo
	if !isErrorExpr(info, b.X) || !isErrorExpr(info, b.Y) {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if name, ok := sentinelName(side); ok {
			pass.Reportf(b.Pos(), "%s compared with %s; wrapped chains defeat identity — use errors.Is", name, b.Op)
			return
		}
	}
}

// checkSentinelSwitch flags `switch err { case ErrX: ... }`.
func checkSentinelSwitch(pass *Pass, s *ast.SwitchStmt) {
	info := pass.TypesInfo
	if s.Tag == nil || !isErrorExpr(info, s.Tag) {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelName(e); ok {
				pass.Reportf(e.Pos(), "switch dispatch on error value against %s; wrapped chains defeat identity — use errors.Is", name)
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// without any %w verb in a constant format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	ftv, ok := info.Types[call.Args[0]]
	if !ok || ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return // non-constant format: cannot judge
	}
	if strings.Contains(constant.StringVal(ftv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if types.AssignableTo(tv.Type, errType) && !tv.IsNil() {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error without %%w; the sentinel chain is lost to errors.Is")
			return
		}
	}
}
