package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the context-threading contract established in
// PR 5: cancellation flows from the Session API down to each Lanczos
// restart, so library code never mints its own root context and never
// swallows the one it was handed. It flags (a) context.Background() and
// context.TODO() calls in non-main packages, except the sanctioned
// nil-default idiom `if ctx == nil { ctx = context.Background() }` at a
// public API boundary, (b) context parameters that are accepted but
// never used — a ctx that stops flowing right where the signature
// promised it would, and (c) context parameters that are not the first
// parameter.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/TODO() in library packages, accepted-but-unpropagated " +
		"context parameters, and context parameters not in first position",
	Run: runCtxFlow,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func runCtxFlow(pass *Pass) error {
	info := pass.TypesInfo
	isLibrary := pass.Pkg.Name() != "main"
	for _, f := range pass.Files {
		if isLibrary {
			checkCtxRoots(pass, f)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			checkCtxParams(pass, info, fd)
		}
	}
	return nil
}

// checkCtxRoots flags context.Background/TODO calls, allowing the
// nil-default idiom: an assignment `v = context.Background()` whose
// enclosing if-statement tests `v == nil` (the documented legacy-shim
// defaulting at the public Session boundary).
func checkCtxRoots(pass *Pass, f *ast.File) {
	info := pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if nilDefaultedCtx(info, stack, call) {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() in a library package severs the caller's cancellation; accept and propagate a ctx parameter", sel.Sel.Name)
		return true
	})
}

// nilDefaultedCtx reports whether the Background/TODO call is the RHS of
// `v = context.Background()` guarded by an enclosing `if v == nil`.
func nilDefaultedCtx(info *types.Info, stack []ast.Node, call *ast.CallExpr) bool {
	if len(stack) < 2 {
		return false
	}
	// The direct parent must be a single assignment to a context variable.
	as, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call {
		return false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	target := info.Uses[id]
	if target == nil || !isContextType(target.Type()) {
		return false
	}
	// Some enclosing if must test that same variable against nil.
	for i := len(stack) - 3; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if cond, ok := ifs.Cond.(*ast.BinaryExpr); ok && cond.Op.String() == "==" {
			for _, side := range []ast.Expr{cond.X, cond.Y} {
				if sid, ok := ast.Unparen(side).(*ast.Ident); ok && info.Uses[sid] == target {
					return true
				}
			}
		}
	}
	return false
}

// checkCtxParams enforces the two signature rules on one declaration:
// ctx first, and ctx used.
func checkCtxParams(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	paramIndex := 0
	for _, field := range fd.Type.Params.List {
		isCtx := isContextType(info.TypeOf(field.Type))
		for _, name := range field.Names {
			if isCtx {
				if paramIndex != 0 {
					pass.Reportf(name.Pos(), "context.Context should be the first parameter of %s", fd.Name.Name)
				}
				if name.Name != "_" && fd.Body != nil && !identUsed(info, fd.Body, info.Defs[name]) {
					pass.Reportf(name.Pos(), "context parameter %s is accepted but never used; propagate it or name it _", name.Name)
				}
			}
			paramIndex++
		}
		if len(field.Names) == 0 {
			if isCtx && paramIndex != 0 {
				pass.Reportf(field.Pos(), "context.Context should be the first parameter of %s", fd.Name.Name)
			}
			paramIndex++
		}
	}
}

// identUsed reports whether obj is referenced anywhere under root.
func identUsed(info *types.Info, root ast.Node, obj types.Object) bool {
	if obj == nil {
		return true // defensive: missing type info must not produce findings
	}
	used := false
	ast.Inspect(root, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
