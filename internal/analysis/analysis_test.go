package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantKey identifies one fixture line that carries expectations.
type wantKey struct {
	file string
	line int
}

// fixtureWants parses the `// want "regex"` comments out of a loaded
// fixture package: the analysistest convention, where each comment states
// a finding expected on its own line.
func fixtureWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pat, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", pkg.Fset.Position(c.Pos()), c.Text, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}
	return wants
}

// runFixture loads one fixture package, runs the given analyzers over it
// and diffs the findings against the package's want comments in both
// directions: every finding must match a want on its line, and every want
// must be matched by some finding.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := LoadFixtures("testdata/src", fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", fixture, err)
	}
	wants := fixtureWants(t, pkgs[0])
	matched := map[wantKey][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func TestWSRetainFixture(t *testing.T)    { runFixture(t, "wsretain", WSRetainAnalyzer) }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, "ctxflow", CtxFlowAnalyzer) }
func TestCtxFlowMainExempt(t *testing.T)  { runFixture(t, "ctxmain", CtxFlowAnalyzer) }
func TestErrSentinelFixture(t *testing.T) { runFixture(t, "errsentinel", ErrSentinelAnalyzer) }
func TestNoAllocFixture(t *testing.T)     { runFixture(t, "noalloc", NoAllocAnalyzer) }
func TestReadOnlyFixture(t *testing.T)    { runFixture(t, "readonly", ReadOnlyAnalyzer) }

// TestFullSuiteOnFixtures runs every analyzer over every fixture at once:
// the cross products must not introduce findings beyond each package's
// own want comments (e.g. the noalloc fixture must stay clean under
// wsretain).
func TestFullSuiteOnFixtures(t *testing.T) {
	for _, fixture := range []string{"wsretain", "ctxflow", "ctxmain", "errsentinel", "noalloc", "readonly"} {
		t.Run(fixture, func(t *testing.T) { runFixture(t, fixture, All()...) })
	}
}

// TestReadOnlyMarkerHygiene checks the directive-anchored diagnostics:
// a marker naming a non-parameter and a bare marker with no slice
// parameters to protect. These anchor to the directive line itself, so
// they are asserted directly instead of via want comments.
func TestReadOnlyMarkerHygiene(t *testing.T) {
	pkgs, err := LoadFixtures("testdata/src", "readonlystale")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkgs, []*Analyzer{ReadOnlyAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "names typo, which is not a parameter of staleName") {
		t.Errorf("stale-name finding = %q", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, "matches no slice parameters") {
		t.Errorf("no-slice finding = %q", findings[1].Message)
	}
}

// TestIgnoreDirective checks the suppression semantics: trailing and
// line-above placements silence the named analyzer; a directive missing
// its mandatory reason is inert; a directive naming another analyzer does
// not suppress.
func TestIgnoreDirective(t *testing.T) {
	pkgs, err := LoadFixtures("testdata/src", "ignored")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkgs, []*Analyzer{CtxFlowAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (inert no-reason ignore and wrong-analyzer ignore): %v", len(findings), findings)
	}
	for _, f := range findings {
		if !strings.Contains(f.Message, "in a library package") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestByName covers the analyzer selection used by envlint -run.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"noalloc", "wsretain"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != NoAllocAnalyzer || got[1] != WSRetainAnalyzer {
		t.Fatalf("ByName order wrong: %v", got)
	}
	if _, err := ByName([]string{"nonesuch"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestFindingString pins the file:line:col rendering envlint prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "noalloc", Message: "m"}
	f.Pos.Filename, f.Pos.Line, f.Pos.Column = "a.go", 3, 7
	if got, want := f.String(), "a.go:3:7: m (noalloc)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestSelfClean runs the full suite over this package and the envlint
// command: the analyzers' own implementation must satisfy the contracts
// it enforces. It exercises the production go-list loader end to end.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the standard library closure from source")
	}
	res, err := Load(LoadConfig{Patterns: []string{"repro/internal/analysis", "repro/cmd/envlint"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) != 2 {
		t.Fatalf("matched %d packages, want 2", len(res.Matched))
	}
	findings, err := Run(res.Matched, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("self-check finding: %s", f)
	}
}

// TestFixtureDiagnosticDeterminism runs one fixture twice and insists on
// identical output — the sort in Run must fully order findings.
func TestFixtureDiagnosticDeterminism(t *testing.T) {
	render := func() string {
		pkgs, err := LoadFixtures("testdata/src", "readonly")
		if err != nil {
			t.Fatal(err)
		}
		findings, err := Run(pkgs, All())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, f := range findings {
			fmt.Fprintln(&sb, f)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("non-deterministic findings:\n%s\nvs\n%s", a, b)
	}
}
