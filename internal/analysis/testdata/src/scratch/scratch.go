// Package scratch is a stub of the engine's workspace arena, shaped just
// enough for the analyzer fixtures to type-check against: the wsretain
// analyzer matches the Workspace type by name and package-path suffix, so
// this stub exercises exactly the same code paths as the real package.
package scratch

// Workspace is the fixture stand-in for the typed bump arena.
type Workspace struct {
	ints  []int32
	bools []bool
	flts  []float64
}

// Get checks a workspace out of the (stubbed) pool.
func Get() *Workspace { return &Workspace{} }

// Put returns a workspace to the pool.
func Put(ws *Workspace) {}

// Int32s checks out an int32 buffer.
func (ws *Workspace) Int32s(n int) []int32 {
	ws.ints = make([]int32, n)
	return ws.ints
}

// Bools checks out a bool buffer.
func (ws *Workspace) Bools(n int) []bool {
	ws.bools = make([]bool, n)
	return ws.bools
}

// Float64s checks out a float64 buffer.
func (ws *Workspace) Float64s(n int) []float64 {
	ws.flts = make([]float64, n)
	return ws.flts
}
