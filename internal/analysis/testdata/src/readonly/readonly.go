// Package readonly exercises the read-only parameter marker: writes
// through marked slice parameters are flagged; reads and writes through
// unmarked parameters are not.
package readonly

//envlint:readonly src
func namedParam(dst, src []float64) {
	dst[0] = src[0]    // dst is unmarked: writable
	src[1] = 2         // want "write through read-only parameter src"
	src[0]++           // want "write through read-only parameter src"
	copy(src, dst)     // want "copy into read-only parameter src"
	_ = append(src, 1) // want "append to read-only parameter src writes its shared backing array"
	p := &src[0]       // want "address of element of read-only parameter src escapes the contract"
	_ = p
}

//envlint:readonly
func allSliceParams(x, y []float64, n int) float64 {
	x[0] = float64(n) // want "write through read-only parameter x"
	y[1] = 2          // want "write through read-only parameter y"
	return x[0] + y[0]
}

//envlint:readonly src
func resliced(dst, src []float64) {
	src[1:][0] = 3 // want "write through read-only parameter src"
	dst[0] = src[0]
}

// The patterns below must produce no findings.

//envlint:readonly src
func readsOnly(dst, src []float64) float64 {
	var acc float64
	for i := range src {
		acc += src[i]
	}
	dst[0] = acc
	local := []float64{1}
	local[0] = 2
	return acc
}

// unmarkedWrites has no marker; writes are fine.
func unmarkedWrites(x []float64) {
	x[0] = 1
}
