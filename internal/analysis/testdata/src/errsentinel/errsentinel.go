// Package errsentinel exercises the sentinel-error analyzer: identity
// comparisons and switch dispatch against Err* values are flagged, as is
// fmt.Errorf formatting an error without %w; errors.Is and %w wrapping
// are the sanctioned forms.
package errsentinel

import (
	"errors"
	"fmt"
)

var ErrNotFound = errors.New("artifact not found")
var ErrCorrupt = errors.New("artifact corrupt")

func compareEq(err error) bool {
	return err == ErrNotFound // want "ErrNotFound compared with =="
}

func compareNeq(err error) bool {
	return ErrCorrupt != err // want "ErrCorrupt compared with !="
}

func dispatch(err error) string {
	switch err {
	case ErrNotFound: // want "switch dispatch on error value against ErrNotFound"
		return "not found"
	case nil:
		return "ok"
	default:
		return "other"
	}
}

func wrapWithoutW(err error) error {
	return fmt.Errorf("load failed: %v", err) // want "fmt.Errorf formats an error without %w"
}

// The sanctioned patterns below must produce no findings.

func wrapWithW(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func matchWithIs(err error) bool {
	return errors.Is(err, ErrNotFound)
}

func nilCheck(err error) bool {
	return err == nil || err != nil
}

func nonSentinelFormat(n int) error {
	return fmt.Errorf("bad size %d", n)
}
