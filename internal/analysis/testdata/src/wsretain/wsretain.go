// Package wsretain exercises the workspace-retention analyzer: every
// flagged line carries a want comment; the rest is the sanctioned usage
// the analyzer must stay silent on.
package wsretain

import (
	"scratch"
	"shared"
)

// OrderRequest mirrors the engine's sanctioned workspace carrier; the
// analyzer exempts it by type name.
type OrderRequest struct {
	Seed      int64
	Workspace *scratch.Workspace
}

type holder struct {
	ws  *scratch.Workspace
	buf []float64
}

var global *scratch.Workspace

var globalBuf = scratch.Get().Float64s(8) // want "workspace buffer stored in package-level variable globalBuf"

func storeGlobal(ws *scratch.Workspace) {
	global = ws // want "workspace stored in package-level variable global"
}

func storeCrossPackage(ws *scratch.Workspace) {
	shared.WS = ws // want "workspace stored in package-level variable WS"
}

func storeField(h *holder, ws *scratch.Workspace) {
	h.ws = ws // want "workspace retained in struct field ws"
}

func storeBufField(h *holder, ws *scratch.Workspace) {
	h.buf = ws.Float64s(4) // want "workspace buffer retained in struct field buf"
}

func packComposite(ws *scratch.Workspace) {
	consume(holder{ws: ws}) // want "workspace retained in composite literal"
}

func launchWithArg(ws *scratch.Workspace) {
	go consumeWS(ws) // want "workspace passed to a goroutine"
}

func launchCapturing(ws *scratch.Workspace) {
	go func() {
		_ = ws.Int32s(4) // want "workspace ws captured by goroutine closure"
	}()
}

func returnBuffer(ws *scratch.Workspace) []float64 {
	return ws.Float64s(3) // want "checked-out workspace buffer returned to the caller"
}

// The sanctioned patterns below must produce no findings.

func fillRequest(ws *scratch.Workspace) {
	var req OrderRequest
	req.Workspace = ws
	submit(OrderRequest{Seed: 1, Workspace: ws})
}

func localComposite(ws *scratch.Workspace) {
	// A composite literal assigned to a local stays inside the call.
	h := holder{ws: ws, buf: ws.Float64s(2)}
	consume(h)
}

func perGoroutineWorkspace() {
	go func() {
		ws := scratch.Get()
		defer scratch.Put(ws)
		_ = ws.Int32s(1)
	}()
}

func copyOut(ws *scratch.Workspace) []float64 {
	buf := ws.Float64s(3)
	out := make([]float64, len(buf))
	copy(out, buf)
	return out
}

func consume(h holder)                { _ = h }
func consumeWS(ws *scratch.Workspace) { _ = ws }
func submit(req OrderRequest)         { _ = req }
