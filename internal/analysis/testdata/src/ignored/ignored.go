// Package ignored exercises //envlint:ignore suppression: both the
// trailing and the line-above placements must silence the named analyzer,
// a directive missing its mandatory reason must be inert (the finding
// reappears), and a directive naming a different analyzer must not
// suppress. Checked by a dedicated test rather than want comments, since
// the interesting lines already carry a directive comment.
package ignored

import "context"

func trailingPlacement() {
	ctx := context.Background() //envlint:ignore ctxflow fixture: same-line suppression
	_ = ctx
}

func linePlacement() {
	//envlint:ignore ctxflow fixture: line-above suppression
	ctx := context.Background()
	_ = ctx
}

func missingReason() {
	ctx := context.TODO() //envlint:ignore ctxflow
	_ = ctx
}

func wrongAnalyzer() {
	ctx := context.Background() //envlint:ignore noalloc reason naming the wrong analyzer
	_ = ctx
}
