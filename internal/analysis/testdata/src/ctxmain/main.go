// Command ctxmain exercises the ctxflow main-package exemption: a main
// package is the process root and may mint context.Background freely.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) {
	<-ctx.Done()
}
