// Package ctxflow exercises the context-threading analyzer in a library
// (non-main) package: minted root contexts, unused and misplaced context
// parameters are flagged; the nil-default idiom and blank parameters are
// not.
package ctxflow

import "context"

func mintRoot() {
	ctx := context.Background() // want "context.Background.. in a library package"
	_ = ctx
}

func mintTODO() error {
	return work(context.TODO()) // want "context.TODO.. in a library package"
}

func unusedCtx(ctx context.Context) int { // want "context parameter ctx is accepted but never used"
	return 1
}

func ctxNotFirst(n int, ctx context.Context) error { // want "context.Context should be the first parameter of ctxNotFirst"
	_ = n
	return work(ctx)
}

// The sanctioned patterns below must produce no findings.

// NilDefault is the documented legacy-shim idiom: defaulting a nil ctx at
// a public API boundary is allowed.
func NilDefault(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

func blankCtx(_ context.Context) int { return 2 }

func propagates(ctx context.Context, n int) error {
	_ = n
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
