// Package noalloc exercises the zero-allocation marker: every structural
// allocation site inside a marked function is flagged; the same
// constructs in unmarked functions, and allocation-free kernels, are not.
package noalloc

//envlint:noalloc
func hotAllocs(dst []float64, idx map[int]int, s string, bs []byte) {
	buf := make([]float64, 4) // want "make in a //envlint:noalloc function allocates"
	_ = buf
	dst = append(dst, 1) // want "append in a //envlint:noalloc function may grow"
	p := new(int)        // want "new in a //envlint:noalloc function allocates"
	_ = p
	lit := []int{1, 2} // want "slice literal in a //envlint:noalloc function allocates"
	_ = lit
	m := map[int]int{} // want "map literal in a //envlint:noalloc function allocates"
	_ = m
	idx[1] = 2         // want "map write in a //envlint:noalloc function may allocate on growth"
	pt := &point{x: 1} // want "address-taken composite literal in a //envlint:noalloc function escapes"
	_ = pt
	f := func() int { return 0 } // want "closure in a //envlint:noalloc function may allocate its captures"
	_ = f
	go helper()     // want "goroutine launch in a //envlint:noalloc function allocates a stack"
	joined := s + s // want "string concatenation in a //envlint:noalloc function allocates"
	_ = joined
	b2 := []byte(s) // want "string/..byte conversion in a //envlint:noalloc function copies"
	_ = b2
	s2 := string(bs) // want "string/..byte conversion in a //envlint:noalloc function copies"
	_ = s2
}

type point struct{ x, y float64 }

func helper() {}

// The patterns below must produce no findings.

//envlint:noalloc
func hotClean(dst, src []float64, n int) float64 {
	var acc float64
	dst = dst[:n]
	for i := range dst {
		dst[i] = 2 * src[i]
		acc += dst[i]
	}
	const tag = "pre" + "fix" // constant concatenation folds at compile time
	_ = tag
	return acc
}

// unmarked may allocate freely.
func unmarked(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1)
}
