// Package readonlystale exercises the marker-hygiene diagnostics of the
// readonly analyzer: a marker naming a non-parameter and a bare marker on
// a function with no slice parameters are each reported at the directive.
// (Checked by a dedicated test rather than want comments: the findings
// anchor to the directive line, where a want comment would corrupt the
// directive itself.)
package readonlystale

//envlint:readonly typo
func staleName(buf []float64) float64 { return buf[0] }

//envlint:readonly
func noSliceParams(n int) int { return n + 1 }
