// Package shared exports a package-level workspace slot so the wsretain
// fixture can exercise the cross-package global-store case.
package shared

import "scratch"

// WS is a package-level workspace sink — storing into it from another
// package must be flagged.
var WS *scratch.Workspace
