// Command loadgen drives concurrent ordering traffic through a live
// envorderd daemon and reports throughput and latency percentiles — the
// CI load-test smoke and a handy capacity probe.
//
// It fires -requests orderings from -concurrency goroutines, spread
// round-robin over a set of -distinct grid graphs and the -algorithms
// list, then:
//
//   - fails (exit 1) on any request error,
//   - fails when the p99 latency exceeds -max-p99,
//   - with -verify-metrics, scrapes /metrics before and after and fails
//     unless the daemon's ok-order count grew by exactly the number of
//     successful requests and the graph-cache hit/miss deltas add up
//     (hits + misses = orders, misses = distinct graphs on a quiet
//     daemon) — the end-to-end check that the observability plane agrees
//     with the traffic actually served,
//   - with -out, writes a BENCH_service.json artifact row (benchjson-style
//     schema: reqs/sec, p50/p99 latency, cache hit rate),
//   - with -batch N, replays the workload as /v1/order/batch documents of
//     N items each and records a second artifact row with per-item
//     throughput, document p50/p99 and the batch_speedup ratio over the
//     singleton phase.
//
// Example:
//
//	loadgen -url http://127.0.0.1:8080 -requests 600 -concurrency 200 \
//	    -grid 60x60 -algorithms rcm,sloan,spectral -verify-metrics \
//	    -out BENCH_service.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	envred "repro"
	"repro/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		urlFlag    = flag.String("url", "", "base URL of the envorderd daemon (required)")
		apiKey     = flag.String("api-key", "", "API key (for daemons running with -api-keys)")
		requests   = flag.Int("requests", 600, "total orderings to drive")
		conc       = flag.Int("concurrency", 200, "concurrent in-flight requests")
		grid       = flag.String("grid", "60x60", "base WxH grid problem size")
		distinct   = flag.Int("distinct", 4, "number of distinct graphs (grid size variants) in the mix")
		algsFlag   = flag.String("algorithms", "rcm,sloan,spectral", "comma-separated algorithm rotation")
		seed       = flag.Int64("seed", 1, "ordering seed")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-request client-side timeout")
		maxP99     = flag.Duration("max-p99", 60*time.Second, "fail when p99 latency exceeds this")
		batchSize  = flag.Int("batch", 0, "after the singleton phase, drive the same workload again as /v1/order/batch documents of this many items and record batch-vs-singleton throughput (0 = skip)")
		verify     = flag.Bool("verify-metrics", false, "scrape /metrics before/after and check order counts and cache hit/miss deltas")
		out        = flag.String("out", "", "write a BENCH_service.json artifact to this file")
		warmupWait = flag.Duration("warmup-wait", 10*time.Second, "how long to wait for /healthz before giving up")
	)
	flag.Parse()
	if *urlFlag == "" {
		log.Fatal("-url is required")
	}
	var w, h int
	if _, err := fmt.Sscanf(*grid, "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
		log.Fatalf("bad -grid %q, want WxH with W,H >= 2", *grid)
	}
	algs := strings.Split(*algsFlag, ",")
	for i := range algs {
		algs[i] = strings.TrimSpace(algs[i])
	}
	if *distinct < 1 {
		*distinct = 1
	}

	opts := []client.Option{client.WithRetries(0, 0)} // errors must surface, not be papered over
	if *apiKey != "" {
		opts = append(opts, client.WithAPIKey(*apiKey))
	}
	c := client.New(*urlFlag, opts...)
	ctx := context.Background()

	waitHealthy(ctx, c, *warmupWait)

	// Distinct graphs: width varies so every content fingerprint differs.
	graphs := make([]*envred.Graph, *distinct)
	for i := range graphs {
		graphs[i] = envred.Grid(w+i, h)
	}

	var before metricsSnapshot
	if *verify {
		before = scrape(ctx, c)
	}

	log.Printf("driving %d orderings at concurrency %d over %d graph(s) x %s",
		*requests, *conc, *distinct, strings.Join(algs, ","))
	durations := make([]time.Duration, *requests)
	errs := make([]error, *requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < *conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				reqStart := time.Now()
				rctx, cancel := context.WithTimeout(ctx, *timeout)
				res, err := c.Order(rctx, graphs[i%len(graphs)], client.OrderRequest{
					Algorithm: algs[i%len(algs)],
					Seed:      *seed,
				})
				cancel()
				durations[i] = time.Since(reqStart)
				if err != nil {
					errs[i] = err
				} else if len(res.Perm) != graphs[i%len(graphs)].N() {
					errs[i] = fmt.Errorf("short permutation: %d of %d", len(res.Perm), graphs[i%len(graphs)].N())
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	failures := 0
	for i, err := range errs {
		if err != nil {
			failures++
			if failures <= 5 {
				log.Printf("request %d failed: %v", i, err)
			}
		}
	}
	successes := *requests - failures

	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50 := percentile(sorted, 0.50)
	p99 := percentile(sorted, 0.99)
	rps := float64(successes) / wall.Seconds()
	log.Printf("done: %d ok, %d failed in %.2fs — %.1f req/s, p50 %s, p99 %s",
		successes, failures, wall.Seconds(), rps, p50, p99)

	exit := 0
	if failures > 0 {
		log.Printf("FAIL: %d request(s) errored (want 0)", failures)
		exit = 1
	}
	if p99 > *maxP99 {
		log.Printf("FAIL: p99 %s exceeds -max-p99 %s", p99, *maxP99)
		exit = 1
	}

	hitRate := math.NaN()
	if *verify {
		after := scrape(ctx, c)
		dOK := after.ordersOK - before.ordersOK
		dHits := after.cacheHits - before.cacheHits
		dMiss := after.cacheMisses - before.cacheMisses
		if dHits+dMiss > 0 {
			hitRate = float64(dHits) / float64(dHits+dMiss)
		}
		log.Printf("metrics: orders ok +%d, cache hits +%d, misses +%d (hit rate %.3f)", dOK, dHits, dMiss, hitRate)
		if dOK != int64(successes) {
			log.Printf("FAIL: daemon counted %d ok orders, loadgen saw %d successes", dOK, successes)
			exit = 1
		}
		if dHits+dMiss != int64(*requests) {
			log.Printf("FAIL: cache hit+miss delta %d != %d requests", dHits+dMiss, *requests)
			exit = 1
		}
		if failures == 0 && dMiss != int64(*distinct) {
			log.Printf("FAIL: cache miss delta %d != %d distinct graphs (is the daemon quiet?)", dMiss, *distinct)
			exit = 1
		}
	}

	var meanNs float64
	if successes > 0 {
		var sum time.Duration
		for i, d := range durations {
			if errs[i] == nil {
				sum += d
			}
		}
		meanNs = float64(sum) / float64(successes)
	}

	rows := []benchmark{singletonRow(*grid, *conc, successes, failures, meanNs, rps, p50, p99, hitRate)}
	if *batchSize > 0 {
		row, ok := driveBatch(ctx, c, graphs, algs, *requests, *conc, *batchSize, *seed, *timeout, *grid, rps)
		rows = append(rows, row)
		if !ok {
			exit = 1
		}
	}

	if *out != "" {
		if err := writeArtifact(*out, rows); err != nil {
			log.Printf("FAIL: writing %s: %v", *out, err)
			exit = 1
		} else {
			log.Printf("wrote %s", *out)
		}
	}
	os.Exit(exit)
}

func waitHealthy(ctx context.Context, c *client.Client, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := c.Health(hctx)
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("daemon not healthy after %s: %v", budget, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// metricsSnapshot is the slice of /metrics loadgen verifies.
type metricsSnapshot struct {
	ordersOK    int64
	cacheHits   int64
	cacheMisses int64
}

// scrape pulls /metrics and folds out the counters loadgen checks. The
// parser is deliberately narrow: counter lines are `name{labels} value`
// or `name value`.
func scrape(ctx context.Context, c *client.Client) metricsSnapshot {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	text, err := c.Metrics(sctx)
	if err != nil {
		log.Fatalf("scraping /metrics: %v", err)
	}
	var snap metricsSnapshot
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr := fields[0], fields[1]
		var val int64
		if _, err := fmt.Sscanf(valStr, "%d", &val); err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(name, "envorderd_orders_total{") && strings.Contains(name, `status="ok"`):
			snap.ordersOK += val
		case name == "envorderd_cache_hits_total":
			snap.cacheHits = val
		case name == "envorderd_cache_misses_total":
			snap.cacheMisses = val
		}
	}
	return snap
}

// artifact mirrors the BENCH_pipeline.json row shape (cmd/benchjson) so
// downstream tooling reads both files the same way.
type artifact struct {
	Schema     string      `json:"schema"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

func singletonRow(grid string, conc, successes, failures int, meanNs, rps float64, p50, p99 time.Duration, hitRate float64) benchmark {
	m := map[string]float64{
		"reqs_per_sec": rps,
		"p50_ms":       float64(p50) / float64(time.Millisecond),
		"p99_ms":       float64(p99) / float64(time.Millisecond),
		"errors":       float64(failures),
	}
	if !math.IsNaN(hitRate) {
		m["cache_hit_rate"] = hitRate
	}
	return benchmark{
		Name:       fmt.Sprintf("Service/order/grid%s/c%d", grid, conc),
		Iterations: int64(successes),
		NsPerOp:    meanNs,
		Metrics:    m,
	}
}

// driveBatch replays the singleton workload as /v1/order/batch documents
// of batchSize items each and reports per-item throughput against the
// singleton phase's — the wire-level measurement of what request batching
// buys (one round trip, one parse, one solve-pool slot per batchSize
// orderings). Returns ok=false when any document or item failed.
func driveBatch(ctx context.Context, c *client.Client, graphs []*envred.Graph, algs []string,
	requests, conc, batchSize int, seed int64, timeout time.Duration, grid string, singletonRps float64) (benchmark, bool) {
	nBatches := (requests + batchSize - 1) / batchSize
	items := make([]*envred.Graph, batchSize)
	for i := range items {
		items[i] = graphs[i%len(graphs)]
	}
	log.Printf("driving %d batch document(s) of %d item(s) at concurrency %d", nBatches, batchSize, conc)
	durations := make([]time.Duration, nBatches)
	okItems := make([]int64, nBatches)
	errs := make([]error, nBatches)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nBatches {
					return
				}
				reqStart := time.Now()
				rctx, cancel := context.WithTimeout(ctx, timeout)
				res, err := c.OrderBatch(rctx, items, client.BatchRequest{
					Algorithm: algs[i%len(algs)],
					Seed:      seed,
				})
				cancel()
				durations[i] = time.Since(reqStart)
				switch {
				case err != nil:
					errs[i] = err
				case res.Failed > 0:
					errs[i] = res.Errors[0]
					okItems[i] = int64(res.Count - res.Failed)
				default:
					okItems[i] = int64(res.Count)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	failures := 0
	var successes int64
	for i, err := range errs {
		successes += okItems[i]
		if err != nil {
			failures++
			if failures <= 5 {
				log.Printf("batch %d failed: %v", i, err)
			}
		}
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50 := percentile(sorted, 0.50)
	p99 := percentile(sorted, 0.99)
	itemsPerSec := float64(successes) / wall.Seconds()
	speedup := itemsPerSec / singletonRps
	log.Printf("batch done: %d item(s) ok, %d document(s) failed in %.2fs — %.1f orderings/s (%.2fx singleton), doc p50 %s, p99 %s",
		successes, failures, wall.Seconds(), itemsPerSec, speedup, p50, p99)
	if failures > 0 {
		log.Printf("FAIL: %d batch document(s) errored (want 0)", failures)
	}
	var meanNs float64
	if n := nBatches - failures; n > 0 {
		var sum time.Duration
		for i, d := range durations {
			if errs[i] == nil {
				sum += d
			}
		}
		meanNs = float64(sum) / float64(n)
	}
	return benchmark{
		Name:       fmt.Sprintf("Service/order_batch/grid%s/c%d/b%d", grid, conc, batchSize),
		Iterations: successes,
		NsPerOp:    meanNs,
		Metrics: map[string]float64{
			"reqs_per_sec":  itemsPerSec,
			"p50_ms":        float64(p50) / float64(time.Millisecond),
			"p99_ms":        float64(p99) / float64(time.Millisecond),
			"errors":        float64(failures),
			"batch_speedup": speedup,
		},
	}, failures == 0
}

func writeArtifact(path string, rows []benchmark) error {
	doc := artifact{
		Schema:     "repro/bench_service/v1",
		Benchmarks: rows,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
