// Command envorder computes an envelope-reducing ordering of a sparse
// symmetric matrix and reports the envelope parameters, in the spirit of
// the SPARSPAK ordering drivers.
//
// Input is one of:
//
//	-mm FILE        a Matrix Market coordinate file (symmetric or general)
//	-problem NAME   a bundled synthetic stand-in (e.g. BARTH4; see -list)
//	-grid WxH       a W×H 5-point grid
//
// The ordering algorithm is selected with -method (or its alias -alg):
// auto, identity, random, or any name in the ordering-service registry
// (rcm, cm, gps, gk, king, sloan, spectral, spectral+sloan, weighted, plus
// user registrations; hybrid aliases spectral+sloan; names are
// case-insensitive — see -list). Method auto races a portfolio on every
// connected component across -parallel workers and keeps the per-component
// winner (optionally capped by -budget); -portfolio picks the contenders
// (comma-separated registry names, default the built-in portfolio). The
// permutation is printed to -out (one 0-based original index per line, new
// order top to bottom).
//
// With -stats json the text report is replaced by a machine-readable JSON
// document carrying the envelope parameters, the number of eigensolves the
// run actually performed, the eigensolver statistics (scheme, matvecs, RQI
// iterations, hierarchy shape, convergence) and — for -method auto — the
// full per-candidate portfolio report.
//
// With -store URL the run reads and writes a persistent artifact store
// (fs:///path?max_bytes=N on disk, mem:// in process): eigensolves are
// keyed by matrix content and seed, so a second run on the same matrix
// performs zero solves and -stats json reports the store traffic
// (hits/misses/puts/errors) alongside eigensolves=0.
//
// With -batch, every positional argument is a Matrix Market file and all
// of them are ordered with one registered algorithm through the pipelined
// batch API (Session.OrderBatch; with -remote, one POST /v1/order/batch
// round trip), reporting a per-file table or one JSON array (-stats json).
//
// With -remote URL the ordering runs on an envorderd daemon instead of in
// process: the graph is loaded locally, shipped over the typed client
// (repro/client), and the daemon's permutation and envelope parameters are
// reported in the usual formats (-api-key authenticates against keyed
// daemons; -budget becomes the server-side ordering timeout). -spy, -out
// and -stats json work as usual; -weighted, -bounds, -portfolio and
// -parallel are local-only.
//
// Example:
//
//	envorder -problem BARTH4 -method spectral -scale 0.5
//	envorder -mm matrix.mtx -method auto -parallel 8
//	envorder -mm matrix.mtx -method auto -portfolio rcm,sloan,spectral
//	envorder -mm matrix.mtx -method auto -stats json | jq .portfolio.Solve
//	envorder -mm matrix.mtx -alg gk -out perm.txt
//	envorder -mm matrix.mtx -method spectral -store fs:///var/cache/envorder
//	envorder -mm matrix.mtx -method spectral -remote http://localhost:8080
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	envred "repro"
	"repro/client"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/perm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("envorder: ")
	var (
		mmFile    = flag.String("mm", "", "Matrix Market input file")
		hbFile    = flag.String("hb", "", "Harwell-Boeing input file")
		problem   = flag.String("problem", "", "bundled problem name (see -list)")
		grid      = flag.String("grid", "", "WxH grid graph, e.g. 100x60")
		list      = flag.Bool("list", false, "list registered algorithms and bundled problems, then exit")
		alg       = flag.String("alg", "", "ordering algorithm (alias of -method)")
		method    = flag.String("method", "", "ordering algorithm: auto, identity, random, or any registered name (see -list); case-insensitive")
		portfolio = flag.String("portfolio", "", "comma-separated registry names raced by -method auto (default: the built-in portfolio)")
		parallel  = flag.Int("parallel", 0, "worker pool size for -method auto (0 = GOMAXPROCS)")
		budget    = flag.Duration("budget", 0, "soft time budget for -method auto (0 = unlimited)")
		scale     = flag.Float64("scale", 1.0, "problem scale for -problem")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "write permutation to this file")
		stats     = flag.String("stats", "", "report format: 'json' replaces the text report with a machine-readable document (envelope parameters, eigensolver statistics, per-candidate portfolio results)")
		spyFlag   = flag.Bool("spy", false, "print an ASCII spy plot of the reordered matrix")
		weighted  = flag.Bool("weighted", false, "with -mm and -alg spectral: use matrix values as Laplacian weights")
		bounds    = flag.Bool("bounds", false, "print the Theorem 2.2 envelope lower bound vs the achieved envelope")
		remote    = flag.String("remote", "", "order on an envorderd daemon at this base URL instead of in process")
		apiKey    = flag.String("api-key", "", "API key for -remote daemons running with -api-keys")
		storeURL  = flag.String("store", "", "persistent artifact store URL (fs:///path?max_bytes=N, mem://): reuse eigensolves across runs")
		batch     = flag.Bool("batch", false, "order every positional Matrix Market file in one batch (Session.OrderBatch locally, POST /v1/order/batch with -remote)")
	)
	flag.Parse()

	if *batch {
		switch {
		case *method == "" && *alg == "":
			*method = "spectral"
		case *method == "":
			*method = *alg
		}
		if flag.NArg() == 0 {
			log.Fatal("-batch needs one or more Matrix Market files as arguments")
		}
		if *mmFile != "" || *hbFile != "" || *problem != "" || *grid != "" {
			log.Fatal("-batch takes its inputs as positional files; -mm/-hb/-problem/-grid do not apply")
		}
		if *weighted || *bounds || *spyFlag || *out != "" || *portfolio != "" {
			log.Fatal("-weighted, -bounds, -spy, -out and -portfolio do not apply to -batch")
		}
		runBatch(flag.Args(), *method, *seed, *budget, *stats, *remote, *apiKey, *storeURL)
		return
	}

	switch {
	case *method == "" && *alg == "":
		*method = "spectral"
	case *method == "":
		*method = *alg
	case *alg != "" && !strings.EqualFold(*alg, *method):
		log.Fatalf("-alg %q conflicts with -method %q; set only one", *alg, *method)
	}
	if *weighted && !strings.EqualFold(*method, "spectral") && !strings.EqualFold(*method, "weighted") {
		log.Fatalf("-weighted is only supported with -method spectral/weighted (got %q)", *method)
	}
	if *portfolio != "" && !strings.EqualFold(*method, "auto") {
		log.Fatalf("-portfolio only applies to -method auto (got %q)", *method)
	}
	switch {
	case *stats == "" || strings.EqualFold(*stats, "json"):
	default:
		log.Fatalf("unknown -stats format %q (supported: json)", *stats)
	}
	if strings.EqualFold(*stats, "json") && (*spyFlag || *bounds) {
		log.Fatal("-stats json replaces the text report and cannot be combined with -spy or -bounds")
	}
	if *remote != "" {
		switch {
		case *weighted:
			log.Fatal("-weighted is local-only (the daemon orders the shipped pattern)")
		case *bounds:
			log.Fatal("-bounds is local-only")
		case *portfolio != "" || *parallel != 0:
			log.Fatal("-portfolio and -parallel are local-only; the daemon picks its own portfolio settings")
		case *storeURL != "":
			log.Fatal("-store is local-only; point the daemon itself at a store (envorderd -store)")
		}
	}

	if *list {
		fmt.Printf("registered algorithms (usable as -method and in -portfolio):\n")
		fmt.Printf("  %s\n", strings.Join(envred.Algorithms(), ", "))
		fmt.Printf("  plus the driver methods: AUTO, IDENTITY, RANDOM (and HYBRID = SPECTRAL+SLOAN)\n\n")
		fmt.Printf("%-10s %-14s %10s %12s\n", "NAME", "SUITE", "N", "NNZ(lower)")
		for _, s := range gen.Specs() {
			fmt.Printf("%-10s %-14s %10d %12d\n", s.Name, s.Suite, s.PaperN, s.PaperNNZ)
		}
		return
	}

	var (
		g      *graph.Graph
		name   string
		weight func(u, v int) float64
	)
	switch {
	case *hbFile != "":
		f, err := os.Open(*hbFile)
		if err != nil {
			log.Fatal(err)
		}
		g, weight, err = envred.ReadHarwellBoeing(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name = *hbFile
		if !*weighted {
			weight = nil // pattern-only ordering unless -weighted
		}
	case *weighted && *mmFile != "":
		f, err := os.Open(*mmFile)
		if err != nil {
			log.Fatal(err)
		}
		g, weight, err = envred.ReadMatrixMarketWeighted(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name = *mmFile + " (weighted)"
	default:
		g, name = loadGraph(*mmFile, *problem, *grid, *scale, *seed)
	}

	if *remote != "" {
		runRemote(g, name, *remote, *apiKey, *method, *seed, *budget, *stats, *spyFlag, *out)
		return
	}

	var counted *envred.CountedStore
	var resil *envred.ResilientStore
	if *storeURL != "" {
		st, err := envred.OpenStore(*storeURL)
		if err != nil {
			log.Fatalf("opening -store %s: %v", *storeURL, err)
		}
		defer st.Close()
		// Default resilience: a flaky store degrades the run to cache-cold
		// solving (warned below) instead of failing or stalling it.
		resil = envred.NewResilientStore(st, envred.ResilienceOptions{})
		counted = envred.NewCountedStore(resil, nil)
	}

	solvesBefore := core.EigensolveCount()
	start := time.Now()
	var p perm.Perm
	var info *envred.SpectralInfo
	var report *envred.AutoReport
	if weight != nil && (strings.EqualFold(*method, "spectral") || strings.EqualFold(*method, "weighted")) {
		wp, winfo, err := envred.WeightedSpectral(g, weight, envred.SpectralOptions{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		p, info = wp, &winfo
	} else {
		p, info, report = computeOrdering(g, *method, *seed, *parallel, *budget, *portfolio, counted)
	}
	elapsed := time.Since(start)
	solves := core.EigensolveCount() - solvesBefore

	if err := p.Check(); err != nil {
		log.Fatalf("internal error: invalid permutation: %v", err)
	}
	s := envelope.Compute(g, p)
	warnDegradedStore(resil)
	if strings.EqualFold(*stats, "json") {
		if err := writeStatsJSON(os.Stdout, name, g, *method, elapsed, s, info, report, solves, counted, resil); err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			if err := writePerm(*out, p); err != nil {
				log.Fatal(err)
			}
			log.Printf("permutation written to %s", *out)
		}
		return
	}
	fmt.Printf("matrix    : %s (n=%d, nnz=%d)\n", name, g.N(), g.Nonzeros())
	fmt.Printf("algorithm : %s (%.3fs)\n", strings.ToUpper(*method), elapsed.Seconds())
	fmt.Printf("envelope  : %d\n", s.Esize)
	fmt.Printf("work Σr²  : %d\n", s.Ework)
	fmt.Printf("bandwidth : %d\n", s.Bandwidth)
	fmt.Printf("1-sum     : %d\n", s.OneSum)
	fmt.Printf("2-sum     : %d\n", s.TwoSum)
	fmt.Printf("max front : %d\n", s.MaxFrontwidth)
	if counted != nil {
		st := counted.Stats()
		fmt.Printf("store     : hits=%d misses=%d puts=%d errors=%d (eigensolves %d)\n",
			st.Hits, st.Misses, st.Puts, st.Errors, solves)
	}
	if info != nil {
		fmt.Printf("lambda2   : %.6g (residual %.2e, multilevel=%v, reversed=%v)\n",
			info.Lambda2, info.Residual, info.Multilevel, info.Reversed)
		fmt.Printf("solver    : %s (matvecs %d, spmv workers %d)\n",
			info.Solve.Scheme, info.Solve.MatVecs, info.Solve.Workers)
	}
	if report != nil {
		fmt.Printf("portfolio : %d component(s) on %d worker(s), spmv workers %d\n",
			len(report.Components), report.Parallelism, report.Solve.Workers)
		for _, cr := range report.Components {
			skipped := 0
			for _, c := range cr.Candidates {
				if c.Skipped {
					skipped++
				}
			}
			fmt.Printf("  comp %-4d n=%-8d winner=%-14s envelope=%-10d bandwidth=%-6d (skipped %d)\n",
				cr.Index, cr.Size, cr.Winner, cr.Stats.Esize, cr.Stats.Bandwidth, skipped)
		}
	}
	if *bounds && info != nil && info.Lambda2 > 0 {
		bd := envred.EnvelopeBounds(g.N(), g.MaxDegree(), info.Lambda2, envred.GershgorinBound(g))
		fmt.Printf("Thm 2.2   : Esize ≥ %.0f (achieved/bound = %.1fx), Ework ≥ %.0f (%.1fx)\n",
			bd.EsizeLower, float64(s.Esize)/bd.EsizeLower,
			bd.EworkLower, float64(s.Ework)/bd.EworkLower)
	}
	if *spyFlag {
		fmt.Println(envred.SpyASCII(g, p, 48))
	}
	if *out != "" {
		if err := writePerm(*out, p); err != nil {
			log.Fatal(err)
		}
		log.Printf("permutation written to %s", *out)
	}
}

// runRemote ships the loaded graph to an envorderd daemon through the
// typed client and reports the daemon's answer in the usual formats.
func runRemote(g *graph.Graph, name, baseURL, apiKey, method string, seed int64, budget time.Duration, stats string, spyFlag bool, out string) {
	opts := []client.Option{}
	if apiKey != "" {
		opts = append(opts, client.WithAPIKey(apiKey))
	}
	c := client.New(baseURL, opts...)
	res, err := c.Order(context.Background(), g, client.OrderRequest{
		Algorithm: method,
		Seed:      seed,
		Timeout:   budget,
	})
	if err != nil {
		var aerr *client.APIError
		if errors.As(err, &aerr) && aerr.BestSoFar {
			log.Fatalf("%v (rerun with a larger -budget, or accept the partial ordering programmatically via repro/client)", err)
		}
		log.Fatal(err)
	}
	p := res.Perm
	if err := p.Check(); err != nil {
		log.Fatalf("daemon returned an invalid permutation: %v", err)
	}
	s := envelope.Stats{
		Esize:         res.Envelope.Esize,
		Ework:         res.Envelope.Ework,
		Bandwidth:     res.Envelope.Bandwidth,
		OneSum:        res.Envelope.OneSum,
		TwoSum:        res.Envelope.TwoSum,
		MaxFrontwidth: res.Envelope.MaxFrontwidth,
	}
	if strings.EqualFold(stats, "json") {
		if err := writeStatsJSON(os.Stdout, name+" (remote)", g, res.Algorithm,
			time.Duration(res.ElapsedMS*float64(time.Millisecond)), s, nil, nil, 0, nil, nil); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("matrix    : %s (n=%d, nnz=%d) via %s\n", name, g.N(), g.Nonzeros(), baseURL)
		fmt.Printf("algorithm : %s (%.3fs server-side, cached=%v)\n", res.Algorithm, res.ElapsedMS/1000, res.Cached)
		fmt.Printf("envelope  : %d\n", s.Esize)
		fmt.Printf("work Σr²  : %d\n", s.Ework)
		fmt.Printf("bandwidth : %d\n", s.Bandwidth)
		fmt.Printf("1-sum     : %d\n", s.OneSum)
		fmt.Printf("2-sum     : %d\n", s.TwoSum)
		fmt.Printf("max front : %d\n", s.MaxFrontwidth)
		if res.Solve != nil {
			fmt.Printf("solver    : %s (matvecs %d, spmv workers %d)\n",
				res.Solve.Scheme, res.Solve.MatVecs, res.Solve.Workers)
		}
		if spyFlag {
			fmt.Println(envred.SpyASCII(g, p, 48))
		}
	}
	if out != "" {
		if err := writePerm(out, p); err != nil {
			log.Fatal(err)
		}
		log.Printf("permutation written to %s", out)
	}
}

func loadGraph(mmFile, problem, grid string, scale float64, seed int64) (*graph.Graph, string) {
	switch {
	case mmFile != "":
		f, err := os.Open(mmFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := envred.ReadMatrixMarket(f)
		if err != nil {
			log.Fatal(err)
		}
		return g, mmFile
	case problem != "":
		spec, ok := gen.ByName(problem)
		if !ok {
			log.Fatalf("unknown problem %q (try -list)", problem)
		}
		return spec.Generate(scale, seed).G, problem
	case grid != "":
		var w, h int
		if _, err := fmt.Sscanf(grid, "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
			log.Fatalf("bad -grid %q, want WxH", grid)
		}
		return graph.Grid(w, h), grid + " grid"
	default:
		log.Fatal("one of -mm, -problem or -grid is required (or -list)")
		return nil, ""
	}
}

// computeOrdering resolves the method against the ordering-service
// registry through a Session: auto/identity/random are driver specials,
// hybrid aliases SPECTRAL+SLOAN, and every other name — built-in or
// user-registered — dispatches via Session.Order. Unknown names list the
// valid ones.
func computeOrdering(g *graph.Graph, alg string, seed int64, parallel int, budget time.Duration, portfolio string, st *envred.CountedStore) (perm.Perm, *envred.SpectralInfo, *envred.AutoReport) {
	ctx := context.Background()
	opts := envred.SessionOptions{Seed: seed, Parallelism: parallel, Budget: budget}
	if st != nil {
		opts.Store = st
	}
	sess := envred.NewSession(opts)
	switch strings.ToLower(alg) {
	case "auto":
		opt := envred.AutoOptions{Seed: seed, Parallelism: parallel, Budget: budget}
		if portfolio != "" {
			for _, name := range strings.Split(portfolio, ",") {
				opt.Portfolio = append(opt.Portfolio, strings.TrimSpace(name))
			}
		}
		res, err := sess.AutoWith(ctx, g, opt)
		if err != nil {
			log.Fatal(err)
		}
		return res.Perm, nil, res.Report
	case "hybrid", "spectral-sloan":
		alg = envred.AlgSpectralSloan
	case "identity":
		return perm.Identity(g.N()), nil, nil
	case "random":
		return perm.Random(g.N(), seed), nil, nil
	}
	if _, ok := envred.Lookup(alg); !ok {
		log.Fatalf("unknown algorithm %q (registered: %s; driver methods: auto, identity, random, hybrid)",
			alg, strings.Join(envred.Algorithms(), ", "))
	}
	res, err := sess.Order(ctx, g, alg)
	if err != nil {
		log.Fatal(err)
	}
	return res.Perm, res.Info, nil
}

// runStats is the -stats json document: one self-contained record per run,
// stable field names, suitable for jq-style post-processing and the CI
// artifacts.
type runStats struct {
	Matrix    string  `json:"matrix"`
	N         int     `json:"n"`
	Nonzeros  int     `json:"nonzeros"`
	Algorithm string  `json:"algorithm"`
	Seconds   float64 `json:"seconds"`
	// Eigensolves counts the eigensolves this process actually performed
	// during the run: 0 when every spectral artifact came from the -store
	// (or the method needed none), and 0 for -remote runs (the daemon did
	// the work).
	Eigensolves int64                `json:"eigensolves"`
	Store       *storeStatsJSON      `json:"store,omitempty"`
	Envelope    envelope.Stats       `json:"envelope"`
	Spectral    *envred.SpectralInfo `json:"spectral,omitempty"`
	Portfolio   *envred.AutoReport   `json:"portfolio,omitempty"`
}

// storeStatsJSON is the -store traffic record, stable snake_case names.
// The resilience fields report the fault-tolerance layer wrapped around
// every -store backend: breaker position and the retry/timeout/drop
// counters of this run.
type storeStatsJSON struct {
	Hits       int64  `json:"hits"`
	Misses     int64  `json:"misses"`
	Puts       int64  `json:"puts"`
	Errors     int64  `json:"errors"`
	Breaker    string `json:"breaker,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	Retries    int64  `json:"retries,omitempty"`
	Timeouts   int64  `json:"timeouts,omitempty"`
	PutDrops   int64  `json:"put_drops,omitempty"`
	Trips      int64  `json:"breaker_trips,omitempty"`
	Recoveries int64  `json:"breaker_recoveries,omitempty"`
}

// warnDegradedStore prints one stderr line when the -store backend
// misbehaved during the run: the ordering itself is unaffected (solves
// simply ran cold / writebacks were dropped), but the operator should
// know the persistent tier is not pulling its weight.
func warnDegradedStore(resil *envred.ResilientStore) {
	if resil == nil {
		return
	}
	rs := resil.Stats()
	if !rs.Degraded && rs.Trips == 0 && rs.Retries == 0 && rs.Timeouts == 0 && rs.PutDrops == 0 {
		return
	}
	log.Printf("warning: -store degraded (breaker=%s, retries=%d, timeouts=%d, dropped writes=%d, trips=%d; last error: %s) — results are unaffected, but artifacts may not persist",
		rs.State, rs.Retries, rs.Timeouts, rs.PutDrops, rs.Trips, rs.LastError)
}

func writeStatsJSON(w io.Writer, name string, g *graph.Graph, method string, elapsed time.Duration,
	s envelope.Stats, info *envred.SpectralInfo, report *envred.AutoReport, solves int64, counted *envred.CountedStore, resil *envred.ResilientStore) error {
	doc := runStats{
		Matrix:      name,
		N:           g.N(),
		Nonzeros:    g.Nonzeros(),
		Algorithm:   strings.ToUpper(method),
		Seconds:     elapsed.Seconds(),
		Eigensolves: solves,
		Envelope:    s,
		Spectral:    info,
		Portfolio:   report,
	}
	if counted != nil {
		st := counted.Stats()
		doc.Store = &storeStatsJSON{Hits: st.Hits, Misses: st.Misses, Puts: st.Puts, Errors: st.Errors}
		if resil != nil {
			rs := resil.Stats()
			doc.Store.Breaker = rs.State.String()
			doc.Store.Degraded = rs.Degraded
			doc.Store.Retries = rs.Retries
			doc.Store.Timeouts = rs.Timeouts
			doc.Store.PutDrops = rs.PutDrops
			doc.Store.Trips = rs.Trips
			doc.Store.Recoveries = rs.Recoveries
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func writePerm(path string, p perm.Perm) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, v := range p {
		fmt.Fprintln(w, v)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
