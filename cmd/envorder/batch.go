package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	envred "repro"
	"repro/client"
	"repro/internal/envelope"
	"repro/internal/graph"
)

// runBatch is the -batch mode: every positional argument is a Matrix
// Market file, and all of them are ordered with one registered algorithm
// in a single Session.OrderBatch call (or, with -remote, one
// POST /v1/order/batch round trip). The per-file reports stream to stdout
// as a table, or as one JSON array with -stats json. Driver specials
// (auto, identity, random) are not batchable; hybrid aliases
// SPECTRAL+SLOAN as in single-matrix mode.
func runBatch(files []string, method string, seed int64, budget time.Duration, stats, remote, apiKey, storeURL string) {
	switch strings.ToLower(method) {
	case "auto", "identity", "random":
		log.Fatalf("-batch needs a registered algorithm (got driver method %q)", method)
	case "hybrid", "spectral-sloan":
		method = envred.AlgSpectralSloan
	}
	if _, ok := envred.Lookup(method); !ok {
		log.Fatalf("unknown algorithm %q (registered: %s)", method, strings.Join(envred.Algorithms(), ", "))
	}
	graphs := make([]*graph.Graph, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		g, err := envred.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		graphs[i] = g
	}

	ctx := context.Background()
	docs := make([]runStats, 0, len(files))
	failed := 0
	start := time.Now()
	if remote != "" {
		opts := []client.Option{}
		if apiKey != "" {
			opts = append(opts, client.WithAPIKey(apiKey))
		}
		res, err := client.New(remote, opts...).OrderBatch(ctx, graphs, client.BatchRequest{
			Algorithm: method,
			Seed:      seed,
			Timeout:   budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, ierr := range res.Errors {
			log.Printf("%s: %s", files[ierr.Index], ierr.Message)
			failed++
		}
		for i, item := range res.Results {
			if item == nil {
				continue
			}
			docs = append(docs, runStats{
				Matrix:    files[i] + " (remote)",
				N:         item.N,
				Nonzeros:  item.Nonzeros,
				Algorithm: item.Algorithm,
				Seconds:   item.ElapsedMS / 1000,
				Envelope: envelope.Stats{
					Esize:         item.Envelope.Esize,
					Ework:         item.Envelope.Ework,
					Bandwidth:     item.Envelope.Bandwidth,
					OneSum:        item.Envelope.OneSum,
					TwoSum:        item.Envelope.TwoSum,
					MaxFrontwidth: item.Envelope.MaxFrontwidth,
				},
			})
		}
	} else {
		opts := envred.SessionOptions{Seed: seed, CacheGraphs: len(graphs)}
		var resil *envred.ResilientStore
		if storeURL != "" {
			st, err := envred.OpenStore(storeURL)
			if err != nil {
				log.Fatalf("opening -store %s: %v", storeURL, err)
			}
			defer st.Close()
			resil = envred.NewResilientStore(st, envred.ResilienceOptions{})
			opts.Store = resil
		}
		sess := envred.NewSession(opts)
		results, err := sess.OrderBatch(ctx, graphs, envred.BatchOptions{Algorithm: method, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		warnDegradedStore(resil)
		for i := range results {
			if rerr := results[i].Err; rerr != nil {
				log.Printf("%s: %v", files[i], rerr)
				failed++
				continue
			}
			res := &results[i].Result
			doc := runStats{
				Matrix:    files[i],
				N:         graphs[i].N(),
				Nonzeros:  graphs[i].Nonzeros(),
				Algorithm: res.Algorithm,
				Seconds:   res.Elapsed.Seconds(),
				Envelope:  res.Stats,
				Spectral:  res.Info,
			}
			docs = append(docs, doc)
		}
	}
	elapsed := time.Since(start)

	if strings.EqualFold(stats, "json") {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("%-28s %10s %12s %12s %10s %10s\n", "MATRIX", "N", "NNZ", "ENVELOPE", "BANDWIDTH", "SECONDS")
		for _, d := range docs {
			fmt.Printf("%-28s %10d %12d %12d %10d %10.3f\n",
				d.Matrix, d.N, d.Nonzeros, d.Envelope.Esize, d.Envelope.Bandwidth, d.Seconds)
		}
		fmt.Printf("%d matrix(es) in %.3fs (%s, %d failed)\n", len(docs), elapsed.Seconds(), strings.ToUpper(method), failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
