// Command envorderd serves envelope-reducing orderings over HTTP/JSON —
// the root package's Session API on the wire.
//
// Endpoints:
//
//	POST /v1/order              synchronous ordering
//	POST /v1/jobs               async job submit → id
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/result   job result
//	GET  /v1/algorithms         registered algorithms
//	GET|POST /v1/fiedler        Fiedler vector + λ2
//	GET  /healthz               liveness (always 200 while serving)
//	GET  /readyz                readiness: store breaker state + counters
//	GET  /metrics               Prometheus text metrics
//
// Graphs are posted as raw Matrix Market bodies (algorithm, seed and
// timeout in the query string) or as JSON documents; see the README's
// "Running as a service" section for the wire format and curl examples.
//
// Authentication is off by default (open mode: all requests share one
// tenant). -api-keys KEY=TENANT[,KEY=TENANT...] turns it on: each tenant
// gets an independent Session artifact cache, graph cache and concurrency
// budget, and requests authenticate with "Authorization: Bearer KEY" or
// "X-API-Key: KEY".
//
// -store URL binds a persistent artifact store (fs:///path?max_bytes=N on
// disk, mem:// in process) shared by every tenant: eigensolves survive
// restarts, replicas pointed at one directory pool their solves, and
// /metrics grows envorderd_store_{hits,misses,errors,puts}_total plus the
// envorderd_store_seconds latency histogram. Store entries are
// content-addressed, so a restarted daemon answers repeat matrices with
// cached=true and zero eigensolves.
//
// The store always runs behind a resilience layer: per-operation timeouts
// (-store-timeout), capped jittered retries for transient failures
// (-store-retries) and a circuit breaker (-store-breaker-threshold,
// -store-breaker-probe) that trips a failing backend out of the request
// path — the daemon keeps serving from its in-memory caches, /readyz
// reports "degraded", and the breaker half-opens to probe for recovery.
// The chaos:// store scheme (chaos://fs:///path?err_rate=0.2&seed=7)
// wraps any backend with deterministic fault injection for drills.
//
// With -addr ending in :0 the kernel picks a free port; the daemon prints
// the bound address and, with -ready-file, writes it to a file once the
// listener is accepting — the hook CI uses to start the daemon on a
// random port and point the integration tests at it.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener drains, queued
// and running jobs get -grace to finish, then anything still in flight is
// cancelled through the library's context path.
//
// Example:
//
//	envorderd -addr :8080
//	curl -s --data-binary @matrix.mtx 'localhost:8080/v1/order?algorithm=rcm' | jq .envelope
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	envred "repro"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("envorderd: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = kernel-assigned)")
		apiKeys   = flag.String("api-keys", "", "comma-separated KEY=TENANT pairs; empty = open mode (no auth, one shared tenant)")
		workers   = flag.Int("workers", 0, "solve pool size: max concurrent orderings (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "async job queue depth (0 = 256)")
		timeout   = flag.Duration("timeout", 0, "default per-request ordering timeout (0 = none)")
		maxBody   = flag.Int64("max-body", 0, "request body size cap in bytes (0 = 32 MiB)")
		cacheG    = flag.Int("cache-graphs", 0, "per-tenant graph/artifact cache capacity (0 = library default)")
		tenantCap = flag.Int("tenant-concurrency", 0, "per-tenant in-flight ordering budget (0 = 4x workers, -1 = unlimited)")
		seed      = flag.Int64("seed", 1, "default ordering seed")
		storeURL  = flag.String("store", "", "persistent artifact store URL (fs:///path?max_bytes=N, mem://); empty = in-memory caching only")
		storeTO   = flag.Duration("store-timeout", 0, "per-operation store timeout (0 = 2s, -1ns = none)")
		storeRet  = flag.Int("store-retries", 0, "store retries after a transient failure (0 = 2, -1 = none)")
		storeBrk  = flag.Int("store-breaker-threshold", 0, "consecutive store failures that trip the circuit breaker (0 = 5, -1 = never)")
		storePrb  = flag.Duration("store-breaker-probe", 0, "how long an open breaker waits before probing the store again (0 = 5s)")
		grace     = flag.Duration("grace", 30*time.Second, "graceful-shutdown drain budget for in-flight jobs")
		readyFile = flag.String("ready-file", "", "write the bound address to this file once listening")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		CacheGraphs:       *cacheG,
		TenantConcurrency: *tenantCap,
		Seed:              *seed,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if *storeURL != "" {
		st, err := envred.OpenStore(*storeURL)
		if err != nil {
			log.Fatalf("opening -store %s: %v", *storeURL, err)
		}
		defer st.Close()
		// Every daemon store runs behind the resilience layer: a slow or
		// dead backend degrades to cache-only serving (breaker state on
		// /readyz and /metrics) instead of stalling request threads.
		cfg.Store = envred.NewResilientStore(st, envred.ResilienceOptions{
			OpTimeout:        *storeTO,
			Retries:          *storeRet,
			BreakerThreshold: *storeBrk,
			BreakerProbe:     *storePrb,
			Logf:             cfg.Logf,
		})
	}
	if *apiKeys != "" {
		cfg.APIKeys = map[string]string{}
		for _, pair := range strings.Split(*apiKeys, ",") {
			key, tenant, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || key == "" || tenant == "" {
				log.Fatalf("bad -api-keys entry %q (want KEY=TENANT)", pair)
			}
			cfg.APIKeys[key] = tenant
		}
	}

	svc := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	nWorkers := cfg.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	log.Printf("listening on %s (workers=%d, tenants=%s)", bound, nWorkers, tenantsDesc(cfg))
	if *readyFile != "" {
		// Write-then-rename so a watcher never reads a half-written file.
		tmp := *readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.Rename(tmp, *readyFile); err != nil {
			log.Fatal(err)
		}
	}

	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("%v: draining (grace %s)", sig, *grace)
	case err := <-errCh:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("job drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}

func tenantsDesc(cfg service.Config) string {
	if len(cfg.APIKeys) == 0 {
		return "open"
	}
	seen := map[string]bool{}
	for _, t := range cfg.APIKeys {
		seen[t] = true
	}
	return fmt.Sprintf("%d keyed", len(seen))
}
