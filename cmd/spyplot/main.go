// Command spyplot renders the nonzero structure of a sparse symmetric
// matrix under a chosen ordering, reproducing the Figure 4.1–4.5 style spy
// plots as PGM images or terminal ASCII art.
//
// Example:
//
//	spyplot -problem BARTH4 -alg spectral -o barth4_spectral.pgm
//	spyplot -grid 80x80 -alg rcm            # ASCII to stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	envred "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/spy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spyplot: ")
	var (
		mmFile  = flag.String("mm", "", "Matrix Market input file")
		problem = flag.String("problem", "", "bundled problem name")
		grid    = flag.String("grid", "", "WxH grid graph")
		alg     = flag.String("alg", "identity", "ordering: identity, spectral, rcm, gps, gk, king, sloan, random")
		scale   = flag.Float64("scale", 1.0, "problem scale for -problem")
		seed    = flag.Int64("seed", 1, "random seed")
		size    = flag.Int("size", 64, "raster size (pixels / characters per side)")
		outFile = flag.String("o", "", "write a PGM image here instead of ASCII to stdout")
	)
	flag.Parse()

	g := load(*mmFile, *problem, *grid, *scale, *seed)
	p := ordering(g, *alg, *seed)
	r := spy.Rasterize(g, p, *size)

	if *outFile == "" {
		fmt.Print(r.ASCII())
		return
	}
	f, err := os.Create(*outFile)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.WritePGM(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%dx%d)", *outFile, *size, *size)
}

func load(mmFile, problem, grid string, scale float64, seed int64) *graph.Graph {
	switch {
	case mmFile != "":
		f, err := os.Open(mmFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := envred.ReadMatrixMarket(f)
		if err != nil {
			log.Fatal(err)
		}
		return g
	case problem != "":
		spec, ok := gen.ByName(problem)
		if !ok {
			log.Fatalf("unknown problem %q", problem)
		}
		return spec.Generate(scale, seed).G
	case grid != "":
		var w, h int
		if _, err := fmt.Sscanf(grid, "%dx%d", &w, &h); err != nil || w < 1 || h < 1 {
			log.Fatalf("bad -grid %q", grid)
		}
		return graph.Grid(w, h)
	default:
		log.Fatal("one of -mm, -problem or -grid is required")
		return nil
	}
}

func ordering(g *graph.Graph, alg string, seed int64) perm.Perm {
	switch alg {
	case "identity":
		return perm.Identity(g.N())
	case "random":
		return perm.Random(g.N(), seed)
	case "spectral":
		p, _, err := envred.Spectral(g, envred.SpectralOptions{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return p
	case "rcm":
		return envred.RCM(g)
	case "gps":
		return envred.GPS(g)
	case "gk":
		return envred.GK(g)
	case "king":
		return envred.King(g)
	case "sloan":
		return envred.Sloan(g)
	default:
		log.Fatalf("unknown algorithm %q", alg)
		return nil
	}
}
