// Command envlint is the project's contract multichecker: it runs the
// internal/analysis suite — wsretain, ctxflow, errsentinel, noalloc,
// readonly — over the packages matching the given patterns and exits
// nonzero when any contract is violated.
//
// Usage:
//
//	go run ./cmd/envlint [flags] [packages]
//
//	-tags list   build tags for the analyzed configuration (e.g.
//	             -tags integration); pair with GOAMD64=v3 in the
//	             environment to analyze the FMA kernel build
//	-run list    comma-separated subset of analyzers to run
//	-list        print the analyzers and their contracts, then exit
//
// With no package arguments it analyzes ./.... Exit status: 0 clean,
// 1 findings, 2 the tree could not be loaded or an analyzer failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags for the analyzed configuration")
	run := flag.String("run", "", "comma-separated subset of analyzers (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*run, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	res, err := analysis.Load(analysis.LoadConfig{Patterns: patterns, Tags: tagList})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := analysis.Run(res.Matched, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "envlint: %d finding(s) across %d package(s)\n", len(findings), len(res.Matched))
		os.Exit(1)
	}
}
