// Command paperbench regenerates every table and figure of Section 4 of
// Barnard, Pothen & Simon, "A Spectral Algorithm for Envelope Reduction of
// Sparse Matrices" (Supercomputing '93), on the bundled synthetic stand-ins
// for the Boeing–Harwell and NASA matrices.
//
// Usage:
//
//	paperbench [-table 4.1|4.2|4.3|4.4|all] [-figures] [-scale S] [-seed N] [-outdir DIR] [-auto] [-parallel N]
//
// -auto appends an AUTO row to the ordering-comparison tables (4.1–4.3):
// the parallel portfolio engine racing all contenders per connected
// component on -parallel workers. Table 4.4 (factorization times) is
// unaffected. All rows run through the harness's shared ordering Session
// with cross-call caching disabled, so every row's time reflects its
// algorithm's full cost (AUTO still shares one eigensolve among its own
// candidates within a run).
//
// With -outdir the tables are also written to table4_*.txt and the figures
// to fig4_*.pgm / fig4_*.txt (ASCII); otherwise everything prints to
// stdout. -scale shrinks every problem (scale 1 = the paper's sizes; the
// default 1 reproduces the full experiment and takes a few minutes).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/perm"
	"repro/internal/spy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	var (
		table    = flag.String("table", "all", "which table to run: 4.1, 4.2, 4.3, 4.4 or all")
		figures  = flag.Bool("figures", true, "regenerate Figures 4.1-4.5 (BARTH4 spy plots)")
		scale    = flag.Float64("scale", 1.0, "problem scale in (0,1]; 1 = paper sizes")
		seed     = flag.Int64("seed", 1993, "random seed for generators and eigensolver")
		outdir   = flag.String("outdir", "", "directory for table4_*.txt and fig4_*.pgm (stdout only if empty)")
		spySize  = flag.Int("spysize", 512, "spy plot raster size in pixels")
		auto     = flag.Bool("auto", false, "append the AUTO portfolio-engine row to tables 4.1-4.3")
		parallel = flag.Int("parallel", 0, "AUTO worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	// The CLI is the process root: signal handling lives in the shell, so
	// Background is the right base for the whole run.
	ctx := context.Background()

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	emit := func(name string, write func(io.Writer) error) {
		if err := write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *outdir != "" {
			f, err := os.Create(filepath.Join(*outdir, name))
			if err != nil {
				log.Fatal(err)
			}
			if err := write(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	runTable := func(id, suite, title string) {
		start := time.Now()
		var results []harness.ProblemResult
		var err error
		if *auto {
			results, err = harness.RunSuitePortfolio(ctx, suite, *scale, *seed, *parallel)
		} else {
			results, err = harness.RunSuite(ctx, suite, *scale, *seed)
		}
		if err != nil {
			log.Fatalf("table %s: %v", id, err)
		}
		log.Printf("table %s computed in %.1fs", id, time.Since(start).Seconds())
		emit("table"+id+".txt", func(w io.Writer) error {
			return harness.WriteTable(w, title, results)
		})
	}

	switch *table {
	case "4.1":
		runTable("4_1", gen.SuiteStructural, "Table 4.1: Results (Boeing-Harwell -- Structural Analysis)")
	case "4.2":
		runTable("4_2", gen.SuiteMisc, "Table 4.2: Results (Boeing-Harwell -- Miscellaneous)")
	case "4.3":
		runTable("4_3", gen.SuiteNASA, "Table 4.3: Results (NASA)")
	case "4.4":
		runTable44(ctx, emit, *scale, *seed)
	case "all":
		runTable("4_1", gen.SuiteStructural, "Table 4.1: Results (Boeing-Harwell -- Structural Analysis)")
		runTable("4_2", gen.SuiteMisc, "Table 4.2: Results (Boeing-Harwell -- Miscellaneous)")
		runTable("4_3", gen.SuiteNASA, "Table 4.3: Results (NASA)")
		runTable44(ctx, emit, *scale, *seed)
	default:
		log.Fatalf("unknown -table %q", *table)
	}

	if *figures {
		runFigures(*outdir, *scale, *seed, *spySize)
	}
}

func runTable44(ctx context.Context, emit func(string, func(io.Writer) error), scale float64, seed int64) {
	var rows []harness.FactorRow
	for _, name := range []string{"BCSSTK29", "BCSSTK33", "BARTH4"} {
		spec, ok := gen.ByName(name)
		if !ok {
			log.Fatalf("problem %s missing", name)
		}
		start := time.Now()
		r, err := harness.RunFactorization(ctx, spec.Generate(scale, seed), seed)
		if err != nil {
			log.Fatalf("table 4.4 (%s): %v", name, err)
		}
		log.Printf("table 4.4 %s factored in %.1fs", name, time.Since(start).Seconds())
		rows = append(rows, r...)
	}
	emit("table4_4.txt", func(w io.Writer) error {
		return harness.WriteFactorTable(w, rows)
	})
}

func runFigures(outdir string, scale float64, seed int64, size int) {
	spec, ok := gen.ByName("BARTH4")
	if !ok {
		log.Fatal("BARTH4 missing")
	}
	p := spec.Generate(scale, seed)
	g := p.G

	ords := make(map[string]perm.Perm, 5)
	ords["fig4_1_original"] = perm.Identity(g.N())
	for _, alg := range harness.Algorithms(seed) {
		r, err := alg.F(context.Background(), g)
		if err != nil {
			log.Fatalf("figures: %s: %v", alg.Name, err)
		}
		switch alg.Name {
		case harness.AlgGPS:
			ords["fig4_2_gps"] = r.Perm
		case harness.AlgGK:
			ords["fig4_3_gk"] = r.Perm
		case harness.AlgRCM:
			ords["fig4_4_rcm"] = r.Perm
		case harness.AlgSpectral:
			ords["fig4_5_spectral"] = r.Perm
		}
	}

	names := []string{"fig4_1_original", "fig4_2_gps", "fig4_3_gk", "fig4_4_rcm", "fig4_5_spectral"}
	for _, name := range names {
		r := spy.Rasterize(g, ords[name], size)
		if outdir == "" {
			small := spy.Rasterize(g, ords[name], 48)
			fmt.Printf("\n%s (nz = %d):\n%s", name, g.N()+2*g.M(), small.ASCII())
			continue
		}
		path := filepath.Join(outdir, name+".pgm")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		txt := filepath.Join(outdir, name+".txt")
		small := spy.Rasterize(g, ords[name], 64)
		if err := os.WriteFile(txt, []byte(small.ASCII()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s and %s", path, txt)
	}
}
