// Command benchjson converts `go test -bench -benchmem` output into the
// stable BENCH_pipeline.json schema and enforces the repository's
// allocation gates.
//
// Usage:
//
//	go test -bench 'Into|AutoSuite' -benchmem -run '^$' ./... |
//	    go run ./cmd/benchjson -out BENCH_pipeline.json \
//	        -zero-alloc 'ComputeInto|EsizeBothInto|SubgraphInto' \
//	        -baseline BENCH_pipeline.json
//
// The output schema is versioned and append-only so downstream tooling can
// track the performance trajectory across PRs:
//
//	{
//	  "schema": "repro/bench_pipeline/v2",
//	  "baseline": [ {benchmark...} ],   // pre-PR reference, carried forward
//	  "benchmarks": [
//	    {"name": "...", "iterations": N,
//	     "ns_per_op": f, "bytes_per_op": f, "allocs_per_op": f,
//	     "metrics": {"envelope": f, "matvecs/solve": f, ...}}
//	  ],
//	  "gates": {"zero_alloc": [...], "required": [...]}  // enforced gates
//	}
//
// v2 adds the "gates" record (which gates this artifact was produced
// under) and the eigensolver rows: the BenchmarkEigensolver multilevel-vs-
// Lanczos ablation reports a matvecs/solve metric alongside wall clock.
//
// -zero-alloc takes a comma-separated list of regular expressions; each
// pattern must match at least one benchmark (so a renamed or missing
// kernel benchmark cannot silently drop its gate) and every match must
// report 0 allocs/op, else the run fails (exit 1) — the CI guard that
// keeps the fused kernels allocation-free. -require takes the same kind of
// list without the allocation condition: each pattern must match at least
// one benchmark row, the presence gate that keeps the eigensolver ablation
// from silently dropping out of the artifact. -baseline carries the pre-PR
// reference record forward: if the given file has a non-empty "baseline"
// it is preserved verbatim, otherwise its "benchmarks" become the
// baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Gates records which gates the artifact was produced under, so a reader
// knows what the numbers were already checked against.
type Gates struct {
	ZeroAlloc []string `json:"zero_alloc,omitempty"`
	Required  []string `json:"required,omitempty"`
}

// File is the versioned artifact schema.
type File struct {
	Schema     string      `json:"schema"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Gates      *Gates      `json:"gates,omitempty"`
}

const schemaVersion = "repro/bench_pipeline/v2"

// The optional -N suffix is the GOMAXPROCS tag go test appends; the lazy
// name match keeps it out of the recorded benchmark name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func loadBaseline(path string) []Benchmark {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // first run: no baseline yet
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: ignoring unreadable baseline %s: %v\n", path, err)
		return nil
	}
	if len(f.Baseline) > 0 {
		return f.Baseline
	}
	return f.Benchmarks
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "BENCH_pipeline.json", "JSON artifact to write")
	zeroAlloc := flag.String("zero-alloc", "", "comma-separated regexps; each must match ≥1 benchmark and all matches must report 0 allocs/op")
	require := flag.String("require", "", "comma-separated regexps; each must match ≥1 benchmark row (presence gate, no allocation condition)")
	baseline := flag.String("baseline", "", "prior artifact whose pre-PR record is carried forward")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		src = f
	}
	benches, err := parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing: %v\n", err)
		os.Exit(2)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(2)
	}

	file := File{Schema: schemaVersion, Benchmarks: benches}
	if *baseline != "" {
		file.Baseline = loadBaseline(*baseline)
	}
	if za, req := splitPatterns(*zeroAlloc), splitPatterns(*require); len(za) > 0 || len(req) > 0 {
		file.Gates = &Gates{ZeroAlloc: za, Required: req}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(benches))

	ok := true
	if n, passed := runGates("zero-alloc", *zeroAlloc, benches, true); !passed {
		ok = false
	} else if n > 0 {
		fmt.Printf("benchjson: %d zero-alloc gates passed\n", n)
	}
	if n, passed := runGates("require", *require, benches, false); !passed {
		ok = false
	} else if n > 0 {
		fmt.Printf("benchjson: %d presence gates passed\n", n)
	}
	if !ok {
		os.Exit(1)
	}
}

// splitPatterns splits a comma-separated flag value into trimmed non-empty
// patterns.
func splitPatterns(s string) []string {
	var out []string
	for _, pat := range strings.Split(s, ",") {
		if pat = strings.TrimSpace(pat); pat != "" {
			out = append(out, pat)
		}
	}
	return out
}

// runGates enforces one gate family over the parsed benchmarks: every
// pattern must match at least one benchmark (a gate whose benchmark
// disappeared — renamed, failed to run — is a failure, not a pass), and
// with checkAllocs every match must report 0 allocs/op. It returns the
// total match count and whether all gates passed.
func runGates(name, patterns string, benches []Benchmark, checkAllocs bool) (int, bool) {
	ok := true
	total := 0
	for _, pat := range splitPatterns(patterns) {
		re, err := regexp.Compile(pat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -%s regexp %q: %v\n", name, pat, err)
			os.Exit(2)
		}
		matched := 0
		for _, b := range benches {
			if !re.MatchString(b.Name) {
				continue
			}
			matched++
			if checkAllocs && b.AllocsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION: %s reports %g allocs/op (want 0)\n",
					b.Name, b.AllocsPerOp)
				ok = false
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -%s gate %q matched no benchmarks\n", name, pat)
			ok = false
		}
		total += matched
	}
	return total, ok
}
